"""Table-driven conformance tests for FILTER / UNION / OPTIONAL evaluation.

Two layers are exercised:

* the engine-independent expression semantics of
  :mod:`repro.sparql.expressions` (error-is-false filters, three-valued
  ``&&`` / ``||``, EBV rules);
* end-to-end evaluation through the engines.  The
  :class:`~repro.baselines.NestedLoopEngine` sees the full W3C semantics
  (its triple store binds variables to literal objects); the multigraph
  engines (:class:`~repro.AmberEngine`, sharded) answer the fragment
  compatible with the paper's data model, where ``<predicate, literal>``
  pairs are vertex attributes and variables bind IRI vertices.
"""

from __future__ import annotations

import pytest

from repro import AmberEngine
from repro.baselines import NestedLoopEngine
from repro.rdf.terms import IRI, Literal, Triple
from repro.rdf.dataset import TripleStore
from repro.sparql.algebra import Variable
from repro.sparql.bindings import Binding
from repro.sparql.expressions import (
    And,
    Bound,
    Comparison,
    ExpressionError,
    Not,
    Or,
    Regex,
    evaluate,
    expression_variables,
    filter_passes,
)
from repro.sparql.parser import parse_sparql

EX = "http://e/"
XSD_INT = "http://www.w3.org/2001/XMLSchema#integer"


def iri(name: str) -> IRI:
    return IRI(EX + name)


def num(value: int) -> Literal:
    return Literal(str(value), datatype=XSD_INT)


@pytest.fixture(scope="module")
def literal_store() -> TripleStore:
    """People with ages/names: literal objects for full-semantics tests."""
    return TripleStore(
        [
            Triple(iri("alice"), iri("age"), num(30)),
            Triple(iri("alice"), iri("name"), Literal("Alice")),
            Triple(iri("bob"), iri("age"), num(7)),
            Triple(iri("bob"), iri("name"), Literal("Bob")),
            Triple(iri("carol"), iri("name"), Literal("Carol")),
            Triple(iri("alice"), iri("knows"), iri("bob")),
            Triple(iri("bob"), iri("knows"), iri("carol")),
        ]
    )


@pytest.fixture(scope="module")
def naive(literal_store) -> NestedLoopEngine:
    return NestedLoopEngine(literal_store)


@pytest.fixture(scope="module")
def iri_store() -> TripleStore:
    """IRI-object graph: the fragment all engines (incl. AMbER) answer."""
    return TripleStore(
        [
            Triple(iri("alice"), iri("knows"), iri("bob")),
            Triple(iri("bob"), iri("knows"), iri("carol")),
            Triple(iri("carol"), iri("knows"), iri("alice")),
            Triple(iri("alice"), iri("likes"), iri("bob")),
            Triple(iri("carol"), iri("likes"), iri("dave")),
            Triple(iri("dave"), iri("knows"), iri("alice")),
        ]
    )


@pytest.fixture(scope="module")
def iri_engines(iri_store):
    return [NestedLoopEngine(iri_store), AmberEngine.from_store(iri_store)]


def names(result, var: str) -> list[str]:
    """The local names bound to ``?var``, sorted, one entry per row."""
    prefix = len(EX)
    return sorted(
        str(row.get_name(var))[prefix:] for row in result if row.get_name(var) is not None
    )


PREFIX = f"PREFIX ex: <{EX}> "


class TestExpressionSemantics:
    """Direct unit coverage of the expression evaluator."""

    ROW = Binding({Variable("x"): num(5), Variable("s"): Literal("abc")})

    def test_unbound_variable_errors(self):
        with pytest.raises(ExpressionError):
            evaluate(Variable("missing"), self.ROW)

    def test_error_is_false_in_filters(self):
        assert filter_passes(Comparison("<", Variable("missing"), num(1)), self.ROW) is False

    def test_bound(self):
        assert evaluate(Bound(Variable("x")), self.ROW) is True
        assert evaluate(Bound(Variable("missing")), self.ROW) is False

    @pytest.mark.parametrize(
        "op,right,expected",
        [
            ("<", 6, True),
            ("<", 5, False),
            ("<=", 5, True),
            (">", 4, True),
            (">=", 6, False),
            ("=", 5, True),
            ("!=", 5, False),
        ],
    )
    def test_numeric_comparisons(self, op, right, expected):
        assert evaluate(Comparison(op, Variable("x"), num(right)), self.ROW) is expected

    def test_string_comparison_and_iri_equality(self):
        assert evaluate(Comparison("<", Variable("s"), Literal("abd")), self.ROW) is True
        assert evaluate(Comparison("=", iri("a"), iri("a")), self.ROW) is True
        assert evaluate(Comparison("!=", iri("a"), iri("b")), self.ROW) is True

    def test_incomparable_order_errors(self):
        with pytest.raises(ExpressionError):
            evaluate(Comparison("<", Variable("s"), num(3)), self.ROW)
        with pytest.raises(ExpressionError):
            evaluate(Comparison(">", iri("a"), iri("b")), self.ROW)

    def test_three_valued_and(self):
        true = Comparison("=", num(1), num(1))
        false = Comparison("=", num(1), num(2))
        error = Comparison("<", Variable("missing"), num(1))
        # false && error -> false (the error does not poison the conjunction)
        assert evaluate(And(false, error), self.ROW) is False
        assert evaluate(And(error, false), self.ROW) is False
        with pytest.raises(ExpressionError):
            evaluate(And(true, error), self.ROW)

    def test_three_valued_or(self):
        true = Comparison("=", num(1), num(1))
        false = Comparison("=", num(1), num(2))
        error = Comparison("<", Variable("missing"), num(1))
        # true || error -> true
        assert evaluate(Or(true, error), self.ROW) is True
        assert evaluate(Or(error, true), self.ROW) is True
        with pytest.raises(ExpressionError):
            evaluate(Or(false, error), self.ROW)

    def test_not_uses_effective_boolean_value(self):
        assert evaluate(Not(Comparison("=", num(1), num(2))), self.ROW) is True
        # EBV of a non-empty plain literal is true
        assert evaluate(Not(Variable("s")), self.ROW) is False

    def test_regex_flags_and_errors(self):
        assert evaluate(Regex(Variable("s"), Literal("^AB"), Literal("i")), self.ROW) is True
        assert evaluate(Regex(Variable("s"), Literal("^AB")), self.ROW) is False
        with pytest.raises(ExpressionError):
            evaluate(Regex(Variable("x"), Literal("5")), self.ROW)  # numeric text
        with pytest.raises(ExpressionError):
            evaluate(Regex(Variable("s"), Literal("(")), self.ROW)  # bad pattern

    def test_expression_variables(self):
        expr = And(
            Bound(Variable("a")),
            Or(Comparison("=", Variable("b"), num(1)), Regex(Variable("c"), Literal("x"))),
        )
        assert expression_variables(expr) == {Variable("a"), Variable("b"), Variable("c")}


class TestFilterConformance:
    def test_numeric_filter(self, naive):
        result = naive.query(PREFIX + "SELECT ?p WHERE { ?p ex:age ?a . FILTER(?a > 10) }")
        assert names(result, "p") == ["alice"]

    def test_filter_on_unbound_variable_drops_all_rows(self, naive):
        result = naive.query(
            PREFIX + "SELECT ?p WHERE { ?p ex:age ?a . FILTER(?missing > 10) }"
        )
        assert len(result) == 0

    def test_negated_bound_filter_keeps_rows(self, naive):
        result = naive.query(
            PREFIX + "SELECT ?p WHERE { ?p ex:age ?a . FILTER(!BOUND(?missing)) }"
        )
        assert names(result, "p") == ["alice", "bob"]

    def test_filter_over_optional_unbound_is_error_false(self, naive):
        # carol has no age: ?a unbound -> comparison errors -> row dropped.
        result = naive.query(
            PREFIX
            + "SELECT ?p WHERE { ?p ex:name ?n . OPTIONAL { ?p ex:age ?a . } "
            + "FILTER(?a > 0) }"
        )
        assert names(result, "p") == ["alice", "bob"]

    def test_bound_filter_over_optional(self, naive):
        result = naive.query(
            PREFIX
            + "SELECT ?p WHERE { ?p ex:name ?n . OPTIONAL { ?p ex:age ?a . } "
            + "FILTER(!BOUND(?a)) }"
        )
        assert names(result, "p") == ["carol"]

    def test_disjunction_with_error_branch(self, naive):
        # For carol the left disjunct errors (unbound ?a) but REGEX saves it.
        result = naive.query(
            PREFIX
            + 'SELECT ?p WHERE { ?p ex:name ?n . OPTIONAL { ?p ex:age ?a . } '
            + 'FILTER(?a > 10 || REGEX(?n, "^C")) }'
        )
        assert names(result, "p") == ["alice", "carol"]

    def test_regex_filter(self, naive):
        result = naive.query(
            PREFIX + 'SELECT ?p WHERE { ?p ex:name ?n . FILTER(REGEX(?n, "o")) }'
        )
        assert names(result, "p") == ["bob", "carol"]

    def test_constant_filter_true_and_false(self, iri_engines):
        for engine in iri_engines:
            keep = engine.query(
                PREFIX + "SELECT ?p WHERE { ?p ex:knows ?q . FILTER(1 < 2) }"
            )
            drop = engine.query(
                PREFIX + "SELECT ?p WHERE { ?p ex:knows ?q . FILTER(2 < 1) }"
            )
            assert len(keep) == 4 and len(drop) == 0, engine.name

    def test_iri_filter_agrees_across_engines(self, iri_engines):
        query = (
            PREFIX + "SELECT ?p ?q WHERE { ?p ex:knows ?q . FILTER(?q != ex:carol) }"
        )
        reference, amber = [engine.query(query) for engine in iri_engines]
        assert reference.same_multiset(amber)
        assert names(reference, "q") == ["alice", "alice", "bob"]


class TestOptionalConformance:
    def test_optional_keeps_unmatched_left_rows(self, naive):
        result = naive.query(
            PREFIX + "SELECT ?p ?a WHERE { ?p ex:name ?n . OPTIONAL { ?p ex:age ?a . } }"
        )
        assert len(result) == 3
        by_name = {str(row.get_name("p")): row.get_name("a") for row in result}
        assert by_name[EX + "carol"] is None

    def test_nested_optional(self, iri_engines):
        # dave likes nobody; carol likes dave (who knows alice).
        query = (
            PREFIX
            + "SELECT ?p ?q ?r WHERE { ?p ex:knows ?q . "
            + "OPTIONAL { ?q ex:likes ?r . OPTIONAL { ?r ex:knows ?s . } } }"
        )
        reference, amber = [engine.query(query) for engine in iri_engines]
        assert reference.same_multiset(amber)
        assert len(reference) == 4

    def test_optional_with_inner_filter_is_a_join_condition(self, naive):
        # OPTIONAL { P FILTER(E) } must keep the left row when E fails,
        # not drop it: spec translation LeftJoin(G, P, E).
        result = naive.query(
            PREFIX
            + "SELECT ?p ?a WHERE { ?p ex:name ?n . "
            + "OPTIONAL { ?p ex:age ?a . FILTER(?a > 10) } }"
        )
        assert len(result) == 3
        by_name = {str(row.get_name("p")): row.get_name("a") for row in result}
        assert by_name[EX + "alice"] == num(30)
        assert by_name[EX + "bob"] is None  # age 7 fails the condition
        assert by_name[EX + "carol"] is None

    def test_optional_filter_one_group_deeper_is_not_a_join_condition(self, iri_engines):
        # OPTIONAL { { P FILTER(E) } }: E is scoped to the *inner* group,
        # where the outer ?p is unbound -> error -> false -> the optional
        # side is empty and the bare left rows survive.  (Only a filter
        # that is a direct child of the OPTIONAL's own group hoists into
        # the LeftJoin condition, per the 18.2.2 translation order.)
        nested = (
            PREFIX
            + "SELECT ?p ?q ?r WHERE { ?p ex:knows ?q . "
            + "OPTIONAL { { ?q ex:likes ?r . FILTER(?p = ex:carol) } } }"
        )
        direct = nested.replace("{ { ", "{ ").replace("} }", "}", 1)
        for engine in iri_engines:
            nested_rows = engine.query(nested)
            assert len(nested_rows) == 4, engine.name
            assert all(row.get_name("r") is None for row in nested_rows), engine.name
            # The direct-child form *is* a join condition: carol knows
            # alice, alice likes bob, and ?p = carol holds on the merge.
            direct_rows = engine.query(direct)
            bound = [row for row in direct_rows if row.get_name("r") is not None]
            assert [str(row.get_name("p")) for row in bound] == [EX + "carol"], engine.name
            assert len(direct_rows) == 4, engine.name

    def test_optional_before_required_part(self, iri_engines):
        query = (
            PREFIX + "SELECT * WHERE { OPTIONAL { ?p ex:likes ?x . } ?p ex:knows ?q . }"
        )
        reference, amber = [engine.query(query) for engine in iri_engines]
        assert reference.same_multiset(amber)


class TestUnionConformance:
    def test_union_is_a_multiset(self, iri_engines):
        query = (
            PREFIX
            + "SELECT ?p WHERE { { ?p ex:knows ex:bob . } UNION { ?p ex:knows ex:bob . } }"
        )
        for engine in iri_engines:
            result = engine.query(query)
            assert names(result, "p") == ["alice", "alice"], engine.name

    def test_union_branch_variable_mismatch_leaves_unbound(self, iri_engines):
        query = (
            PREFIX
            + "SELECT ?p ?q ?r WHERE { { ?p ex:knows ?q . } UNION { ?p ex:likes ?r . } }"
        )
        for engine in iri_engines:
            result = engine.query(query)
            assert len(result) == 6, engine.name
            knows_rows = [row for row in result if row.get_name("q") is not None]
            likes_rows = [row for row in result if row.get_name("r") is not None]
            assert len(knows_rows) == 4 and len(likes_rows) == 2, engine.name
            assert all(row.get_name("r") is None for row in knows_rows), engine.name

    def test_union_branch_with_unknown_predicate_still_answers(self, iri_engines):
        # One dead branch (predicate absent from the data) must not make
        # the whole query unsatisfiable — the other branch still answers.
        query = (
            PREFIX
            + "SELECT ?p WHERE { { ?p ex:no_such ?q . } UNION { ?p ex:likes ?q . } }"
        )
        for engine in iri_engines:
            assert names(engine.query(query), "p") == ["alice", "carol"], engine.name

    def test_union_then_join(self, iri_engines):
        query = (
            PREFIX
            + "SELECT ?p ?q WHERE { { ?p ex:likes ?q . } UNION { ?q ex:likes ?p . } "
            + "?p ex:knows ?q . }"
        )
        reference, amber = [engine.query(query) for engine in iri_engines]
        assert reference.same_multiset(amber)
        assert len(reference) == 1  # only alice likes+knows bob


class TestSolutionModifiersOverAlgebra:
    QUERY = (
        PREFIX
        + "SELECT ?p WHERE { { ?p ex:knows ex:bob . } UNION { ?p ex:knows ex:bob . } "
        + "UNION { ?p ex:likes ex:bob . } }"
    )

    def test_distinct_over_union(self, iri_engines):
        for engine in iri_engines:
            result = engine.query(
                self.QUERY.replace("SELECT ?p", "SELECT DISTINCT ?p")
            )
            assert names(result, "p") == ["alice"], engine.name

    def test_limit_and_offset_over_union(self, iri_engines):
        for engine in iri_engines:
            assert len(engine.query(self.QUERY + " LIMIT 2")) == 2, engine.name
            assert len(engine.query(self.QUERY + " OFFSET 1")) == 2, engine.name
            assert len(engine.query(self.QUERY + " LIMIT 2 OFFSET 2")) == 1, engine.name

    def test_count_and_ask_over_algebra(self, iri_engines):
        for engine in iri_engines:
            assert engine.count(self.QUERY) == 3, engine.name
            assert engine.count(self.QUERY.replace("SELECT ?p", "SELECT DISTINCT ?p")) == 1
            assert engine.ask(self.QUERY) is True, engine.name
            dead = PREFIX + "SELECT ?p WHERE { { ?p ex:no ?q . } UNION { ?q ex:no ?p . } }"
            assert engine.ask(dead) is False, engine.name

    def test_distinct_limit_offset_agree_across_engines(self, iri_engines):
        query = (
            PREFIX
            + "SELECT DISTINCT ?p ?q WHERE { ?p ex:knows ?q . "
            + "OPTIONAL { ?q ex:likes ?r . } } LIMIT 3 OFFSET 1"
        )
        reference, amber = [engine.query(query) for engine in iri_engines]
        # DISTINCT collapses the optional expansion identically; the row
        # *count* is deterministic even though engine row order is not.
        assert len(reference) == len(amber) == 3


class TestPlanCaching:
    def test_algebra_plans_are_cached_and_invalidated(self, iri_store):
        from repro.server.cache import LRUCache

        engine = AmberEngine.from_store(iri_store)
        engine.plan_cache = LRUCache(8)
        query = (
            PREFIX + "SELECT ?p WHERE { ?p ex:knows ?q . FILTER(?q != ex:bob) }"
        )
        first = engine.prepare(query)
        second = engine.prepare(query)
        assert first is second  # cache hit shares the AlgebraPlan
        baseline = len(engine.query(query))
        engine.insert_triples([Triple(iri("eve"), iri("knows"), iri("carol"))])
        assert engine.prepare(query) is not first  # mutation invalidated it
        assert len(engine.query(query)) == baseline + 1

    def test_pushed_down_filter_prunes_before_join(self, iri_store):
        # The group filter binds entirely inside the first BGP block, so it
        # must be attached to that block, not evaluated at group level.
        from repro.sparql.eval import BGPNode, compile_pattern

        parsed = parse_sparql(
            PREFIX
            + "SELECT * WHERE { ?p ex:knows ?q . OPTIONAL { ?q ex:likes ?r . } "
            + "FILTER(?q != ex:bob) }"
        )
        compiled = compile_pattern(parsed.where)
        assert isinstance(compiled.blocks[0], BGPNode)
        assert len(compiled.blocks[0].filters) == 1
        # And the filtered evaluation still matches an un-pushed reference.
        engine = AmberEngine.from_store(iri_store)
        result = engine.query(
            PREFIX
            + "SELECT * WHERE { ?p ex:knows ?q . OPTIONAL { ?q ex:likes ?r . } "
            + "FILTER(?q != ex:bob) }"
        )
        assert names(result, "q") == ["alice", "alice", "carol"]

    def test_filter_on_optional_variables_stays_at_group_level(self):
        from repro.sparql.eval import FilterNode, compile_pattern

        parsed = parse_sparql(
            PREFIX
            + "SELECT * WHERE { ?p ex:knows ?q . OPTIONAL { ?q ex:likes ?r . } "
            + "FILTER(?r != ex:bob) }"
        )
        compiled = compile_pattern(parsed.where)
        assert isinstance(compiled.root, FilterNode)
        assert all(not block.filters for block in compiled.blocks)
