"""Unit tests for the SPARQL tokenizer and parser."""

import pytest

from repro.rdf.namespace import RDF_TYPE
from repro.rdf.terms import IRI, Literal
from repro.sparql.algebra import (
    GroupGraphPattern,
    OptionalPattern,
    SelectQuery,
    TriplePattern,
    UnionPattern,
    Variable,
)
from repro.sparql.expressions import And, Bound, Comparison, Not, Or, Regex
from repro.sparql.parser import SparqlSyntaxError, parse_sparql


class TestBasicQueries:
    def test_single_pattern(self):
        query = parse_sparql("SELECT ?s WHERE { ?s <http://e/p> <http://e/o> . }")
        assert query.projection == [Variable("s")]
        expected = TriplePattern(Variable("s"), IRI("http://e/p"), IRI("http://e/o"))
        assert query.patterns == [expected]

    def test_prefixed_names(self):
        query = parse_sparql(
            "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:p ex:o . }"
        )
        assert query.patterns[0].predicate == IRI("http://e/p")
        assert query.patterns[0].object == IRI("http://e/o")

    def test_select_star(self):
        query = parse_sparql("SELECT * WHERE { ?s <http://e/p> ?o . }")
        assert query.projection == []
        assert query.answer_variables() == [Variable("s"), Variable("o")]

    def test_multiple_patterns(self):
        query = parse_sparql(
            """
            PREFIX ex: <http://e/>
            SELECT ?a ?b WHERE {
              ?a ex:p ?b .
              ?b ex:q ex:target .
              ?a ex:name "Alice" .
            }
            """
        )
        assert len(query.patterns) == 3
        assert query.patterns[2].object == Literal("Alice")

    def test_literal_with_datatype_and_language(self):
        query = parse_sparql(
            'PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:age "7"^^<http://www.w3.org/2001/XMLSchema#int> . '
            '?s ex:label "sept"@fr . }'
        )
        assert query.patterns[0].object.datatype == "http://www.w3.org/2001/XMLSchema#int"
        assert query.patterns[1].object.language == "fr"

    def test_a_keyword(self):
        query = parse_sparql("PREFIX ex: <http://e/> SELECT ?s WHERE { ?s a ex:Person . }")
        assert query.patterns[0].predicate == RDF_TYPE

    def test_distinct_and_limit(self):
        query = parse_sparql("SELECT DISTINCT ?s WHERE { ?s <http://e/p> ?o . } LIMIT 5")
        assert query.distinct
        assert query.limit == 5

    def test_predicate_and_object_lists(self):
        query = parse_sparql(
            "PREFIX ex: <http://e/> SELECT * WHERE { ?s ex:p ?a , ?b ; ex:q ?c . }"
        )
        assert len(query.patterns) == 3
        assert {p.predicate.value for p in query.patterns} == {"http://e/p", "http://e/q"}

    def test_dollar_variables(self):
        query = parse_sparql("SELECT $s WHERE { $s <http://e/p> $o . }")
        assert query.projection == [Variable("s")]

    def test_numeric_object(self):
        query = parse_sparql("PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:age 42 . }")
        assert query.patterns[0].object.value == "42"

    def test_paper_query_parses(self, prefixes):
        query = parse_sparql(
            prefixes
            + """
            SELECT ?X0 ?X1 ?X2 WHERE {
              ?X0 y:livedIn ?X1 .
              ?X1 y:isPartOf ?X2 .
              ?X2 y:hasCapital ?X1 .
              ?X5 y:hasName "MCA_Band" .
              ?X3 y:livedIn x:United_States .
            }
            """
        )
        assert len(query.patterns) == 5
        assert len(query.variables()) == 5
        assert query.answer_variables() == [Variable("X0"), Variable("X1"), Variable("X2")]


class TestErrors:
    def test_unknown_prefix(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?s WHERE { ?s ex:p ?o . }")

    def test_missing_where(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?s { ?s <http://e/p> ?o . }")

    def test_unterminated_group(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?s WHERE { ?s <http://e/p> ?o .")

    def test_variable_predicate_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?s WHERE { ?s ?p ?o . }")

    def test_non_select_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("ASK WHERE { ?s <http://e/p> ?o . }")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?s WHERE { ?s <http://e/p> ?o . } extra")


class TestAlgebra:
    def test_variables_in_first_appearance_order(self):
        query = parse_sparql("SELECT * WHERE { ?b <http://e/p> ?a . ?a <http://e/q> ?c . }")
        assert query.variables() == [Variable("b"), Variable("a"), Variable("c")]

    def test_constant_terms(self):
        query = parse_sparql(
            'PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:p ex:o . ?s ex:name "x" . }'
        )
        assert query.constant_terms() == {IRI("http://e/o"), Literal("x")}

    def test_pattern_validation(self):
        with pytest.raises(TypeError):
            TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        with pytest.raises(TypeError):
            TriplePattern(Literal("s"), IRI("http://e/p"), Variable("o"))

    def test_str_round_trips_through_parser(self):
        query = parse_sparql(
            'PREFIX ex: <http://e/> SELECT DISTINCT ?s WHERE { ?s ex:p ex:o . ?s ex:name "x" . } LIMIT 3'
        )
        reparsed = parse_sparql(str(query))
        assert reparsed.patterns == query.patterns
        assert reparsed.distinct == query.distinct
        assert reparsed.limit == query.limit

    def test_select_query_len(self):
        pattern = TriplePattern(Variable("s"), IRI("http://e/p"), Variable("o"))
        query = SelectQuery(patterns=[pattern])
        assert len(query) == 1


class TestPatternAlgebra:
    def test_filter_parses_into_where_tree(self):
        query = parse_sparql("SELECT ?s WHERE { ?s <http://e/p> ?o . FILTER(?o > 3) }")
        assert isinstance(query.where, GroupGraphPattern)
        assert len(query.patterns) == 1
        filters = query.where.filters()
        assert len(filters) == 1
        expr = filters[0].expression
        assert isinstance(expr, Comparison) and expr.op == ">"
        assert expr.left == Variable("o")

    def test_plain_bgp_has_no_where_tree(self):
        query = parse_sparql("SELECT ?s WHERE { ?s <http://e/p> ?o . }")
        assert query.where is None

    def test_optional_parses(self):
        query = parse_sparql(
            "SELECT * WHERE { ?s <http://e/p> ?o . OPTIONAL { ?s <http://e/q> ?z . } }"
        )
        optionals = [e for e in query.where.elements if isinstance(e, OptionalPattern)]
        assert len(optionals) == 1
        assert len(optionals[0].pattern.elements) == 1
        # Flattened triples cover both the required and the optional part.
        assert len(query.patterns) == 2
        assert query.answer_variables() == [Variable("s"), Variable("o"), Variable("z")]

    def test_union_chain_parses(self):
        query = parse_sparql(
            "SELECT ?s WHERE { { ?s <http://e/p> ?o . } UNION { ?s <http://e/q> ?o . } "
            "UNION { ?s <http://e/r> ?o . } }"
        )
        unions = [e for e in query.where.elements if isinstance(e, UnionPattern)]
        assert len(unions) == 1
        assert len(unions[0].branches) == 3

    def test_union_without_left_group_rejected(self):
        query = "SELECT ?s WHERE { ?s <http://e/p> ?o . UNION { ?s <http://e/q> ?z . } }"
        with pytest.raises(SparqlSyntaxError) as excinfo:
            parse_sparql(query)
        message = str(excinfo.value)
        assert "UNION" in message
        assert f"offset {query.index('UNION')}" in message

    def test_filter_expression_grammar(self):
        query = parse_sparql(
            'SELECT ?s WHERE { ?s <http://e/p> ?o . '
            'FILTER(!BOUND(?z) && (?o = "x" || REGEX(?o, "^a", "i"))) }'
        )
        expr = query.where.filters()[0].expression
        assert isinstance(expr, And)
        assert isinstance(expr.left, Not) and isinstance(expr.left.operand, Bound)
        assert isinstance(expr.right, Or)
        assert isinstance(expr.right.right, Regex)
        assert expr.right.right.flags == Literal("i")

    def test_spaceless_comparison_operators(self):
        # The operator lexer must not swallow a following sign or '!'.
        query = parse_sparql("SELECT ?s WHERE { ?s <http://e/p> ?o . FILTER(?o>=-1) }")
        expr = query.where.filters()[0].expression
        assert isinstance(expr, Comparison) and expr.op == ">="
        assert expr.right == Literal("-1", datatype="http://www.w3.org/2001/XMLSchema#integer")
        query = parse_sparql(
            "PREFIX ex: <http://e/> SELECT ?s WHERE "
            "{ ?s ex:p ?o . FILTER(?o=ex:n0&&BOUND(?s)) }"
        )
        expr = query.where.filters()[0].expression
        assert isinstance(expr, And)
        assert isinstance(expr.left, Comparison) and expr.left.op == "="

    def test_filter_builtin_without_parentheses(self):
        query = parse_sparql("SELECT ?s WHERE { ?s <http://e/p> ?o . FILTER BOUND(?o) }")
        assert isinstance(query.where.filters()[0].expression, Bound)

    def test_nested_optional_parses(self):
        query = parse_sparql(
            "SELECT * WHERE { ?a <http://e/p> ?b . OPTIONAL { ?b <http://e/q> ?c . "
            "OPTIONAL { ?c <http://e/r> ?d . } } }"
        )
        outer = [e for e in query.where.elements if isinstance(e, OptionalPattern)][0]
        inner = [e for e in outer.pattern.elements if isinstance(e, OptionalPattern)]
        assert len(inner) == 1

    def test_algebra_query_str_round_trips(self):
        text = (
            'SELECT ?s WHERE { { ?s <http://e/p> ?o . } UNION { ?s <http://e/q> ?o . } '
            'OPTIONAL { ?s <http://e/r> ?z . } FILTER(?o != "x" && ?s = ?s) } LIMIT 7'
        )
        query = parse_sparql(text)
        again = parse_sparql(str(query))
        assert again.where == query.where
        assert again.limit == query.limit

    def test_filter_variables_are_not_projected_by_star(self):
        query = parse_sparql("SELECT * WHERE { ?s <http://e/p> ?o . FILTER(!BOUND(?z)) }")
        assert query.answer_variables() == [Variable("s"), Variable("o")]


class TestRejectionDiagnostics:
    def test_group_by_rejected_with_position_and_hint(self):
        query = "SELECT ?s WHERE { ?s <http://e/p> ?o . } GROUP BY ?s"
        with pytest.raises(SparqlSyntaxError) as excinfo:
            parse_sparql(query)
        message = str(excinfo.value)
        assert "GROUP BY" in message
        assert f"offset {query.index('GROUP')}" in message
        assert "FILTER" in message and "UNION" in message and "OPTIONAL" in message

    def test_order_by_rejected_with_position(self):
        query = "SELECT ?s WHERE { ?s <http://e/p> ?o . } ORDER BY ?s"
        with pytest.raises(SparqlSyntaxError) as excinfo:
            parse_sparql(query)
        message = str(excinfo.value)
        assert "ORDER BY" in message
        assert f"offset {query.index('ORDER')}" in message

    def test_having_rejected_with_position(self):
        query = "SELECT ?s WHERE { ?s <http://e/p> ?o . } HAVING (?s > 3)"
        with pytest.raises(SparqlSyntaxError) as excinfo:
            parse_sparql(query)
        message = str(excinfo.value)
        assert "HAVING" in message
        assert f"offset {query.index('HAVING')}" in message

    def test_property_path_rejected_with_position(self):
        query = "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:p/ex:q ?o . }"
        with pytest.raises(SparqlSyntaxError) as excinfo:
            parse_sparql(query)
        message = str(excinfo.value)
        assert "property paths" in message
        assert f"offset {query.index('/ex:q')}" in message

    def test_unsupported_filter_operator_rejected_with_position(self):
        query = "SELECT ?s WHERE { ?s <http://e/p> ?o . FILTER(?o + 1 > 3) }"
        with pytest.raises(SparqlSyntaxError) as excinfo:
            parse_sparql(query)
        message = str(excinfo.value)
        assert "'+'" in message
        assert f"offset {query.index('+')}" in message


class TestSolutionModifiers:
    def test_offset_is_parsed(self):
        query = parse_sparql("SELECT ?s WHERE { ?s <http://e/p> ?o . } LIMIT 10 OFFSET 3")
        assert query.limit == 10
        assert query.offset == 3

    def test_offset_without_limit(self):
        query = parse_sparql("SELECT ?s WHERE { ?s <http://e/p> ?o . } OFFSET 2")
        assert query.limit is None
        assert query.offset == 2

    def test_modifiers_round_trip_via_str(self):
        query = parse_sparql("SELECT ?s WHERE { ?s <http://e/p> ?o . } LIMIT 10 OFFSET 3")
        again = parse_sparql(str(query))
        assert again.limit == 10 and again.offset == 3
