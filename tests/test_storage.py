"""Unit tests for persisting and reloading the multigraph database."""

import json

import pytest

from repro import AmberEngine
from repro.datasets import LubmGenerator
from repro.storage import (
    FORMAT_VERSION,
    StorageError,
    load_data_multigraph,
    load_engine,
    save_data_multigraph,
    save_engine,
)


class TestDataMultigraphRoundTrip:
    def test_round_trip_preserves_structure(self, paper_data, tmp_path):
        path = tmp_path / "paper.amber.json"
        size = save_data_multigraph(paper_data, path)
        assert size > 0
        loaded = load_data_multigraph(path)
        assert loaded.statistics() == paper_data.statistics()
        # Dictionaries keep the same ids, so entities round-trip exactly.
        for vertex in paper_data.graph.vertices():
            assert loaded.entity(vertex) == paper_data.entity(vertex)
            assert loaded.graph.attributes(vertex) == paper_data.graph.attributes(vertex)
        assert set(loaded.graph.edges()) == set(paper_data.graph.edges())

    def test_round_trip_on_generated_dataset(self, tmp_path):
        store = LubmGenerator(scale=1, students_per_department=8, seed=2).store()
        original = AmberEngine.from_store(store).data
        path = tmp_path / "lubm.amber.json"
        save_data_multigraph(original, path)
        loaded = load_data_multigraph(path)
        assert loaded.statistics() == original.statistics()

    def test_format_is_versioned_json(self, paper_data, tmp_path):
        path = tmp_path / "paper.amber.json"
        save_data_multigraph(paper_data, path)
        document = json.loads(path.read_text())
        assert document["format_version"] == FORMAT_VERSION
        assert document["triple_count"] == 16


class TestEngineRoundTrip:
    def test_reloaded_engine_answers_identically(self, paper_engine, prefixes, tmp_path):
        path = tmp_path / "engine.amber.json"
        save_engine(paper_engine, path)
        reloaded = load_engine(path)
        queries = [
            "SELECT ?p WHERE { ?p y:wasBornIn ?c . }",
            "SELECT ?p ?c WHERE { ?p y:wasBornIn ?c . ?p y:diedIn ?c . }",
            'SELECT ?s WHERE { ?s y:hasCapacityOf "90000" . }',
            "SELECT ?p WHERE { ?p y:livedIn x:United_States . }",
        ]
        for query in queries:
            expected = paper_engine.query(prefixes + query)
            assert reloaded.query(prefixes + query).same_solutions(expected)

    def test_reloaded_engine_has_build_report(self, paper_engine, tmp_path):
        path = tmp_path / "engine.amber.json"
        save_engine(paper_engine, path)
        reloaded = load_engine(path)
        assert reloaded.build_report is not None
        assert reloaded.build_report.triples == 16
        assert reloaded.build_report.vertices == 9


class TestMutatedEngineSnapshot:
    def test_mutated_engine_round_trips(self, paper_turtle, prefixes, tmp_path):
        engine = AmberEngine.from_turtle(paper_turtle)
        engine.apply_update(
            prefixes
            + "INSERT DATA { x:David_Bowie y:wasBornIn x:London } ; "
            + "DELETE DATA { x:Amy_Winehouse y:livedIn x:United_States }"
        )
        path = tmp_path / "mutated.amber.json"
        save_engine(engine, path)
        reloaded = load_engine(path)
        assert reloaded.data_version == engine.data_version == 1
        queries = [
            "SELECT ?p WHERE { ?p y:wasBornIn x:London . }",
            "SELECT ?p WHERE { ?p y:livedIn x:United_States . }",
            "SELECT ?p ?c WHERE { ?p y:wasBornIn ?c . ?p y:diedIn ?c . }",
        ]
        for query in queries:
            expected = engine.query(prefixes + query)
            assert reloaded.query(prefixes + query).same_solutions(expected)
        assert reloaded.statistics() == engine.statistics()

    def test_reloaded_snapshot_stays_mutable(self, paper_turtle, prefixes, tmp_path):
        engine = AmberEngine.from_turtle(paper_turtle)
        engine.apply_update(prefixes + "INSERT DATA { x:A y:p x:B }")
        path = tmp_path / "snap.amber.json"
        save_engine(engine, path)
        reloaded = load_engine(path)
        reloaded.apply_update(prefixes + "INSERT DATA { x:B y:p x:C }")
        assert reloaded.data_version == 2
        assert len(reloaded.query(prefixes + "SELECT ?x WHERE { ?x y:p ?y . }")) == 2

    def test_service_snapshot_under_read_lock(self, paper_turtle, prefixes, tmp_path):
        from repro.server import EngineService

        engine = AmberEngine.from_turtle(paper_turtle)
        service = EngineService(engine)
        service.update(prefixes + "INSERT DATA { x:A y:p x:B }")
        path = tmp_path / "service.amber.json"
        assert service.snapshot(path) > 0
        reloaded = load_engine(path)
        assert reloaded.data_version == 1
        rows = reloaded.query(prefixes + "SELECT ?x WHERE { ?x y:p ?y . }")
        assert len(rows) == 1


class TestErrors:
    def test_not_json_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("this is not json")
        with pytest.raises(StorageError):
            load_data_multigraph(path)

    def test_wrong_version_rejected(self, paper_data, tmp_path):
        path = tmp_path / "old.json"
        save_data_multigraph(paper_data, path)
        document = json.loads(path.read_text())
        document["format_version"] = FORMAT_VERSION + 99
        path.write_text(json.dumps(document))
        with pytest.raises(StorageError):
            load_data_multigraph(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_data_multigraph(tmp_path / "does-not-exist.json")
