"""Unit tests for vertex signatures and synopses, validated against Table 3."""

from repro.index.synopsis import (
    data_synopsis,
    dominates,
    query_synopsis,
    side_features,
    signature_of,
)
from repro.multigraph.graph import Multigraph
from repro.rdf.terms import IRI


def paper_edge_type(paper_data, local: str) -> int:
    return paper_data.edge_type_id(IRI("http://dbpedia.org/ontology/" + local))


def paper_vertex(paper_data, local: str) -> int:
    return paper_data.vertex_id(IRI("http://dbpedia.org/resource/" + local))


class TestSignature:
    def test_signature_splits_directions(self, paper_data):
        london = paper_vertex(paper_data, "London")
        signature = signature_of(paper_data.graph, london)
        # London (v2 in Fig. 1c): 4 incoming multi-edges, 2 outgoing multi-edges.
        assert len(signature.incoming) == 4
        assert len(signature.outgoing) == 2

    def test_multi_edge_in_signature(self, paper_data):
        london = paper_vertex(paper_data, "London")
        signature = signature_of(paper_data.graph, london)
        born = paper_edge_type(paper_data, "wasBornIn")
        died = paper_edge_type(paper_data, "diedIn")
        assert frozenset({born, died}) in signature.incoming

    def test_edge_type_total(self, paper_data):
        london = paper_vertex(paper_data, "London")
        signature = signature_of(paper_data.graph, london)
        # Incoming: hasCapital, wasBornIn, {wasBornIn,diedIn}, wasFormedIn = 5 incidences;
        # outgoing: isPartOf, hasStadium = 2.
        assert signature.edge_type_total() == 7

    def test_isolated_vertex_signature_empty(self):
        graph = Multigraph()
        graph.add_vertex(0)
        signature = signature_of(graph, 0)
        assert signature.incoming == () and signature.outgoing == ()


class TestSideFeatures:
    def test_table3_style_features(self):
        # Mirror of sigma+_{v2} = {{t1},{t5},{t6},{t4,t5}} from Table 3.
        multi_edges = [frozenset({1}), frozenset({5}), frozenset({6}), frozenset({4, 5})]
        f1, f2, f3, f4 = side_features(multi_edges)
        assert f1 == 2          # max cardinality
        assert f2 == 4          # distinct edge types (1, 4, 5, 6)
        assert f3 == -1         # negated minimum index
        assert f4 == 6          # maximum index

    def test_empty_side_is_all_zero(self):
        assert side_features([]) == (0.0, 0.0, 0.0, 0.0)

    def test_single_multi_edge(self):
        assert side_features([frozenset({7})]) == (1.0, 1.0, -7.0, 7.0)


class TestSynopses:
    def test_data_synopsis_has_eight_fields(self, paper_data):
        london = paper_vertex(paper_data, "London")
        synopsis = data_synopsis(signature_of(paper_data.graph, london))
        assert len(synopsis) == 8

    def test_query_synopsis_empty_side_does_not_constrain(self):
        # A query vertex with no incoming edges must accept any data vertex,
        # including ones whose incoming minimum edge index is positive.
        query = query_synopsis([], [frozenset({3})])
        data = (1.0, 2.0, -2.0, 5.0, 1.0, 1.0, -3.0, 3.0)
        assert dominates(query, data)

    def test_dominance_is_field_wise(self):
        query = query_synopsis([frozenset({2})], [])
        smaller = (1.0, 1.0, -2.0, 2.0, 0.0, 0.0, 0.0, 0.0)
        assert dominates(query, smaller)
        # A data vertex whose max incoming index is below the query's fails.
        assert not dominates(query, (1.0, 1.0, -1.0, 1.0, 0.0, 0.0, 0.0, 0.0))

    def test_dominates_length_mismatch_raises(self):
        import pytest

        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))

    def test_paper_candidate_example_for_u0(self, paper_data):
        """Section 4.2's example: candidates for u0 (signature {-t5}) are v1 and v7."""
        graph = paper_data.graph
        t5 = paper_edge_type(paper_data, "wasBornIn")
        query = query_synopsis([], [frozenset({t5})])
        candidates = {
            vertex
            for vertex in graph.vertices()
            if dominates(query, data_synopsis(signature_of(graph, vertex)))
        }
        amy = paper_vertex(paper_data, "Amy_Winehouse")
        nolan = paper_vertex(paper_data, "Christopher_Nolan")
        assert amy in candidates and nolan in candidates
        # Vertices with no outgoing wasBornIn-compatible signature are pruned,
        # e.g. the stadium and the band.
        assert paper_vertex(paper_data, "WembleyStadium") not in candidates
        assert paper_vertex(paper_data, "Music_Band") not in candidates
