"""Unit tests of the metrics registry and its Prometheus text exposition."""

from __future__ import annotations

import math
import threading

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Summary,
    parse_exposition,
    validate_exposition,
)
from repro.telemetry.metrics import DEFAULT_LATENCY_BUCKETS

pytestmark = pytest.mark.metrics


def scrape(registry: MetricsRegistry) -> dict[str, dict]:
    text = registry.expose()
    return parse_exposition(text)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("requests_total", "Requests.")
        assert counter.value() == 0
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5

    def test_rejects_negative_increments(self):
        counter = Counter("requests_total", "Requests.")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        counter = Counter("requests_total", "Requests.", labelnames=("kind",))
        counter.inc(kind="query")
        counter.inc(2, kind="ask")
        assert counter.value(kind="query") == 1
        assert counter.value(kind="ask") == 2

    def test_label_set_must_match_declaration(self):
        counter = Counter("requests_total", "Requests.", labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.inc(status="ok")
        with pytest.raises(ValueError):
            counter.inc()

    def test_set_total_mirrors_monotone_source(self):
        counter = Counter("cache_total", "Cache lookups.", labelnames=("outcome",))
        counter.set_total(10, outcome="hit")
        assert counter.value(outcome="hit") == 10
        counter.set_total(12, outcome="hit")
        with pytest.raises(ValueError):
            counter.set_total(5, outcome="hit")

    def test_monotonicity_across_scrapes(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "Ops.", labelnames=("kind",))
        previous = 0.0
        for round_number in range(1, 5):
            counter.inc(round_number, kind="a")
            families = scrape(registry)
            (_, _, value) = next(
                sample for sample in families["ops_total"]["samples"] if sample[1]["kind"] == "a"
            )
            assert value >= previous
            previous = value

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad-name", "Nope.")
        with pytest.raises(ValueError):
            Counter("ok_total", "Nope.", labelnames=("bad-label",))


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("in_flight", "In flight.")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 2


class TestHistogram:
    def test_bucket_counts_are_cumulative_and_sum_exact(self):
        histogram = Histogram("lat_seconds", "Latency.", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["buckets"] == [1, 2, 3, 4]  # cumulative incl. +Inf
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(5.555)

    def test_exposition_has_inf_bucket_and_count_consistency(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat_seconds", "Latency.", labelnames=("stage",), buckets=(0.01, 0.1)
        )
        histogram.observe(0.001, stage="parse")
        histogram.observe(0.05, stage="parse")
        histogram.observe(2.0, stage="match")
        families = scrape(registry)  # parse_exposition validates cumulativeness + +Inf
        samples = families["lat_seconds"]["samples"]
        inf_parse = next(
            value
            for name, labels, value in samples
            if name == "lat_seconds_bucket"
            and labels.get("stage") == "parse"
            and labels["le"] == "+Inf"
        )
        count_parse = next(
            value
            for name, labels, value in samples
            if name == "lat_seconds_count" and labels.get("stage") == "parse"
        )
        assert inf_parse == count_parse == 2

    def test_bucket_sums_match_observations(self):
        histogram = Histogram("lat_seconds", "Latency.")
        observations = [0.0004, 0.002, 0.3, 12.0, 45.0]
        for value in observations:
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["sum"] == pytest.approx(sum(observations))
        assert snap["buckets"][-1] == len(observations)
        # 45s exceeds the largest default bound, so it only lands in +Inf.
        assert snap["buckets"][-2] == len(observations) - 1
        assert len(snap["buckets"]) == len(DEFAULT_LATENCY_BUCKETS) + 1

    def test_rejects_degenerate_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", "H.", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", "H.", buckets=(0.1, 0.1))


class TestRegistry:
    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "A.")
        with pytest.raises(ValueError):
            registry.gauge("a_total", "A again.")

    def test_exposition_round_trips_label_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("odd_total", "Odd labels.", labelnames=("q",))
        tricky = 'quote " backslash \\ newline \n end'
        counter.inc(q=tricky)
        families = parse_exposition(registry.expose())
        ((_, labels, value),) = families["odd_total"]["samples"]
        assert value == 1
        assert labels["q"] == 'quote \\" backslash \\\\ newline \\n end'

    def test_empty_families_still_expose_validly(self):
        registry = MetricsRegistry()
        registry.counter("quiet_total", "Never incremented.")
        registry.histogram("quiet_seconds", "Never observed.")
        validate_exposition(registry.expose())

    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("spins_total", "Spins.")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 8000


class TestExpositionValidator:
    def test_rejects_malformed_sample_line(self):
        with pytest.raises(ValueError):
            parse_exposition("# TYPE x counter\nx{bad 1\n")

    def test_rejects_sample_without_type(self):
        with pytest.raises(ValueError):
            parse_exposition("orphan_total 3\n")

    def test_rejects_non_cumulative_histogram(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match="cumulative"):
            parse_exposition(text)

    def test_rejects_missing_inf_bucket(self):
        text = "# TYPE h histogram\n" 'h_bucket{le="0.1"} 5\n' "h_sum 1\nh_count 5\n"
        with pytest.raises(ValueError, match="Inf"):
            parse_exposition(text)

    def test_accepts_inf_values(self):
        families = parse_exposition("# TYPE g gauge\ng +Inf\n")
        assert families["g"]["samples"][0][2] == math.inf


class TestSummary:
    def test_snapshot_matches_stats_shape(self):
        summary = Summary(window=16)
        snap = summary.snapshot()
        assert snap == {
            "count": 0,
            "mean_seconds": None,
            "p50_seconds": None,
            "p90_seconds": None,
            "p99_seconds": None,
        }
        for value in (0.1, 0.2, 0.3):
            summary.observe(value)
        snap = summary.snapshot()
        assert snap["count"] == 3
        assert snap["mean_seconds"] == pytest.approx(0.2)
        assert snap["p50_seconds"] == pytest.approx(0.2)

    def test_count_is_exact_beyond_window(self):
        summary = Summary(window=4)
        for index in range(100):
            summary.observe(float(index))
        assert summary.count == 100
        # Percentiles only see the window (the most recent observations).
        assert summary.percentile(0.0) == 96.0

    def test_observer_mirrors_observations(self):
        seen: list[float] = []
        summary = Summary(window=8, observer=seen.append)
        summary.observe(0.5)
        summary.observe(1.5)
        assert seen == [0.5, 1.5]
