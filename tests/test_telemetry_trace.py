"""Unit tests of the thread-local span tracer."""

from __future__ import annotations

import threading

import pytest

from repro.telemetry import (
    annotate,
    current_trace,
    iter_spans,
    record_span,
    span,
    start_trace,
    timed_iter,
)

pytestmark = pytest.mark.metrics


class TestSpanNesting:
    def test_children_attach_to_enclosing_span(self):
        with start_trace("query", keep_tree=True) as trace:
            with span("parse"):
                pass
            with span("match"):
                with span("scatter"):
                    pass
        root = trace.root
        assert root is not None
        assert [child.name for child in root.children] == ["parse", "match"]
        assert [child.name for child in root.children[1].children] == ["scatter"]
        assert root.seconds >= root.children[1].children[0].seconds >= 0.0

    def test_annotations_land_on_innermost_span(self):
        with start_trace("query", keep_tree=True) as trace:
            with span("match", vertex="v0") as sp:
                sp.annotate(rows=7)
                annotate(note="inner")
        (match,) = trace.root.children
        assert match.attributes == {"vertex": "v0", "rows": 7, "note": "inner"}

    def test_record_span_attaches_preformed_timing(self):
        with start_trace("query", keep_tree=True) as trace:
            record_span("shard", 0.25, shard=3)
        (shard,) = trace.root.children
        assert shard.seconds == 0.25
        assert shard.attributes == {"shard": 3}

    def test_iter_spans_walks_depth_first(self):
        with start_trace("query", keep_tree=True) as trace:
            with span("a"):
                with span("b"):
                    pass
            with span("c"):
                pass
        names = [record.name for record in iter_spans(trace.root)]
        assert names == ["query", "a", "b", "c"]

    def test_as_dict_round_trip(self):
        with start_trace("query", keep_tree=True) as trace:
            with span("stage", kind="bgp"):
                pass
        payload = trace.root.as_dict()
        assert payload["name"] == "query"
        (stage,) = payload["children"]
        assert stage["name"] == "stage"
        assert stage["kind"] == "bgp"  # attributes are flattened into the dict
        assert stage["seconds"] >= 0.0


class TestNoOpWhenInactive:
    def test_span_outside_trace_is_noop(self):
        assert current_trace() is None
        with span("orphan") as sp:
            sp.annotate(ignored=True)
        annotate(ignored=True)
        record_span("orphan", 0.1)
        assert current_trace() is None

    def test_timed_iter_outside_trace_passes_through(self):
        source = iter([1, 2, 3])
        assert list(timed_iter("orphan", source)) == [1, 2, 3]

    def test_trace_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with start_trace("query", keep_tree=True):
                assert current_trace() is not None
                raise RuntimeError("boom")
        assert current_trace() is None


class TestThreadIsolation:
    def test_traces_do_not_leak_across_threads(self):
        barrier = threading.Barrier(2)
        seen: dict[str, list[str]] = {}

        def worker(label: str) -> None:
            with start_trace(f"query-{label}", keep_tree=True) as trace:
                barrier.wait()  # both traces active simultaneously
                with span(f"stage-{label}"):
                    barrier.wait()
            seen[label] = [record.name for record in iter_spans(trace.root)]

        threads = [threading.Thread(target=worker, args=(label,)) for label in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen["a"] == ["query-a", "stage-a"]
        assert seen["b"] == ["query-b", "stage-b"]

    def test_worker_thread_sees_no_trace(self):
        observed: list[object] = []

        def probe() -> None:
            observed.append(current_trace())

        with start_trace("query", keep_tree=True):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert observed == [None]


class TestSink:
    def test_sink_receives_children_before_root(self):
        order: list[str] = []
        with start_trace("query", sink=lambda record: order.append(record.name)):
            with span("outer"):
                with span("inner"):
                    pass
        assert order == ["inner", "outer", "query"]

    def test_sink_only_trace_discards_tree(self):
        with start_trace("query", sink=lambda record: None, keep_tree=False) as trace:
            with span("stage"):
                pass
        assert trace.keep_tree is False
        assert trace.root.children == []

    def test_root_seconds_set_before_sink_sees_root(self):
        captured: list[float] = []

        def sink(record):
            if record.name == "query":
                captured.append(record.seconds)

        with start_trace("query", sink=sink):
            pass
        assert captured and captured[0] >= 0.0


class TestTimedIter:
    def test_exhaustion_records_span_with_row_count(self):
        with start_trace("query", keep_tree=True) as trace:
            rows = list(timed_iter("expand", iter(["r1", "r2", "r3"]), op="expand"))
        assert rows == ["r1", "r2", "r3"]
        (expand,) = trace.root.children
        assert expand.name == "expand"
        assert expand.attributes["rows"] == 3
        assert expand.attributes["op"] == "expand"

    def test_early_abandonment_still_records(self):
        with start_trace("query", keep_tree=True) as trace:
            iterator = timed_iter("expand", iter(range(100)))
            assert next(iterator) == 0
            assert next(iterator) == 1
            iterator.close()
        (expand,) = trace.root.children
        assert expand.attributes["rows"] == 2

    def test_generator_time_charged_inside_trace(self):
        # The wrapped generator is only pulled lazily: wrapping outside a
        # trace and consuming inside one must not crash, and vice versa.
        iterator = timed_iter("late", iter([1]))
        with start_trace("query", keep_tree=True):
            assert list(iterator) == [1]
