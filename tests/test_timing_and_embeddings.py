"""Unit tests for the shared deadline, error types and embedding expansion."""

import time

import pytest

from repro.amber.embeddings import combine_component_bindings, solution_to_bindings
from repro.amber.matching import ComponentSolution
from repro.errors import QueryTimeout, ReproError, UnsupportedQueryError
from repro.multigraph.builder import build_data_multigraph
from repro.multigraph.query_graph import build_query_multigraph
from repro.rdf.terms import IRI, Triple
from repro.sparql.bindings import Binding
from repro.sparql.algebra import Variable
from repro.sparql.parser import parse_sparql
from repro.timing import Deadline


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline(None)
        deadline.check()
        assert not deadline.expired
        assert deadline.remaining() is None

    def test_expired_deadline_raises(self):
        deadline = Deadline(0.0)
        time.sleep(0.001)
        assert deadline.expired
        with pytest.raises(QueryTimeout):
            deadline.check()

    def test_remaining_decreases(self):
        deadline = Deadline(10.0)
        first = deadline.remaining()
        time.sleep(0.001)
        second = deadline.remaining()
        assert first is not None and second is not None
        assert second <= first <= 10.0

    def test_error_hierarchy(self):
        assert issubclass(QueryTimeout, ReproError)
        assert issubclass(UnsupportedQueryError, ReproError)


class TestComponentSolution:
    def test_embedding_count_is_product_of_satellite_sets(self):
        solution = ComponentSolution(core={0: 10}, satellites={1: {20, 21}, 2: {30, 31, 32}})
        assert solution.embedding_count() == 6
        assert len(list(solution.embeddings())) == 6

    def test_embeddings_include_core_assignment(self):
        solution = ComponentSolution(core={0: 10, 3: 13}, satellites={1: {20}})
        (embedding,) = list(solution.embeddings())
        assert embedding == {0: 10, 3: 13, 1: 20}

    def test_no_satellites_yields_single_embedding(self):
        solution = ComponentSolution(core={0: 7})
        assert list(solution.embeddings()) == [{0: 7}]
        assert solution.embedding_count() == 1


class TestEmbeddingTranslation:
    def _setup(self):
        ex = "http://example.org/"
        triples = [
            Triple(IRI(ex + "a"), IRI(ex + "p"), IRI(ex + "b")),
            Triple(IRI(ex + "a"), IRI(ex + "p"), IRI(ex + "c")),
        ]
        data = build_data_multigraph(triples)
        query = parse_sparql(f"SELECT * WHERE {{ ?x <{ex}p> ?y . }}")
        qgraph = build_query_multigraph(query, data)
        return data, qgraph, ex

    def test_solution_to_bindings_uses_inverse_vertex_mapping(self):
        data, qgraph, ex = self._setup()
        x = qgraph.vertex_id(Variable("x"))
        y = qgraph.vertex_id(Variable("y"))
        a = data.vertex_id(IRI(ex + "a"))
        b = data.vertex_id(IRI(ex + "b"))
        c = data.vertex_id(IRI(ex + "c"))
        solution = ComponentSolution(core={x: a}, satellites={y: {b, c}})
        rows = set(solution_to_bindings(solution, qgraph, data))
        assert rows == {
            Binding({Variable("x"): IRI(ex + "a"), Variable("y"): IRI(ex + "b")}),
            Binding({Variable("x"): IRI(ex + "a"), Variable("y"): IRI(ex + "c")}),
        }

    def test_combine_component_bindings_cross_product(self):
        left = [
            Binding({Variable("a"): IRI("http://e/1")}),
            Binding({Variable("a"): IRI("http://e/2")}),
        ]
        right = [Binding({Variable("b"): IRI("http://e/3")})]
        combined = list(combine_component_bindings([left, right]))
        assert len(combined) == 2
        assert all(Variable("a") in row and Variable("b") in row for row in combined)

    def test_combine_component_bindings_empty_input(self):
        assert list(combine_component_bindings([])) == [Binding({})]

    def test_combine_component_bindings_drops_conflicts(self):
        shared = Variable("s")
        left = [Binding({shared: IRI("http://e/1")})]
        right = [Binding({shared: IRI("http://e/2")})]
        assert list(combine_component_bindings([left, right])) == []
