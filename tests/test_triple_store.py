"""Unit tests for the in-memory triple store and its permutation indexes."""

from repro.rdf.dataset import TripleStore
from repro.rdf.terms import IRI, Literal, Triple

EX = "http://example.org/"


def t(s, p, o):
    obj = o if isinstance(o, Literal) else IRI(EX + o)
    return Triple(IRI(EX + s), IRI(EX + p), obj)


class TestMutation:
    def test_add_and_len(self):
        store = TripleStore()
        assert store.add(t("a", "p", "b"))
        assert len(store) == 1

    def test_duplicate_add_is_noop(self):
        store = TripleStore()
        store.add(t("a", "p", "b"))
        assert not store.add(t("a", "p", "b"))
        assert len(store) == 1

    def test_remove(self):
        store = TripleStore([t("a", "p", "b")])
        assert store.remove(t("a", "p", "b"))
        assert len(store) == 0
        assert not store.remove(t("a", "p", "b"))
        assert list(store.triples(IRI(EX + "a"), None, None)) == []

    def test_contains(self):
        store = TripleStore([t("a", "p", "b")])
        assert t("a", "p", "b") in store
        assert t("a", "p", "c") not in store


class TestPatternMatching:
    def setup_method(self):
        self.store = TripleStore(
            [
                t("a", "p", "b"),
                t("a", "p", "c"),
                t("a", "q", "b"),
                t("b", "p", "c"),
                t("c", "name", Literal("C")),
            ]
        )

    def test_fully_bound(self):
        assert len(list(self.store.triples(IRI(EX + "a"), IRI(EX + "p"), IRI(EX + "b")))) == 1
        assert len(list(self.store.triples(IRI(EX + "a"), IRI(EX + "p"), IRI(EX + "z")))) == 0

    def test_subject_predicate(self):
        objects = {tr.object for tr in self.store.triples(IRI(EX + "a"), IRI(EX + "p"), None)}
        assert objects == {IRI(EX + "b"), IRI(EX + "c")}

    def test_predicate_object(self):
        subjects = {tr.subject for tr in self.store.triples(None, IRI(EX + "p"), IRI(EX + "c"))}
        assert subjects == {IRI(EX + "a"), IRI(EX + "b")}

    def test_subject_object(self):
        predicates = {tr.predicate for tr in self.store.triples(IRI(EX + "a"), None, IRI(EX + "b"))}
        assert predicates == {IRI(EX + "p"), IRI(EX + "q")}

    def test_single_component_patterns(self):
        assert len(list(self.store.triples(IRI(EX + "a"), None, None))) == 3
        assert len(list(self.store.triples(None, IRI(EX + "p"), None))) == 3
        assert len(list(self.store.triples(None, None, IRI(EX + "b")))) == 2

    def test_wildcard_all(self):
        assert len(list(self.store.triples())) == 5

    def test_count_matches_enumeration(self):
        patterns = [
            (IRI(EX + "a"), IRI(EX + "p"), None),
            (None, IRI(EX + "p"), IRI(EX + "c")),
            (None, IRI(EX + "p"), None),
            (None, None, None),
            (IRI(EX + "a"), None, IRI(EX + "b")),
        ]
        for s, p, o in patterns:
            assert self.store.count(s, p, o) == len(list(self.store.triples(s, p, o)))


class TestStatistics:
    def test_paper_dataset_statistics(self, paper_store):
        stats = paper_store.statistics()
        assert stats["triples"] == 16
        # 9 distinct IRIs appear as subject or resource object (v0..v8 in Fig. 1c).
        assert stats["vertices"] == 9
        # 13 resource-valued triples (3 of the 16 have literal objects).
        assert stats["edges"] == 13
        assert stats["edge_types"] == 9

    def test_literal_triples(self, paper_store):
        assert len(list(paper_store.literal_triples())) == 3

    def test_subjects_predicates_objects(self):
        store = TripleStore([t("a", "p", "b"), t("a", "name", Literal("A"))])
        assert store.subjects() == {IRI(EX + "a")}
        assert store.predicates() == {IRI(EX + "p"), IRI(EX + "name")}
        assert store.objects() == {IRI(EX + "b"), Literal("A")}


class TestLoading:
    def test_from_ntriples(self):
        doc = "<http://e/s> <http://e/p> <http://e/o> .\n<http://e/s> <http://e/n> \"x\" .\n"
        store = TripleStore.from_ntriples(doc)
        assert len(store) == 2

    def test_from_turtle_binds_namespaces(self):
        store = TripleStore.from_turtle("@prefix ex: <http://e/> . ex:a ex:p ex:b .")
        assert len(store) == 1
        assert store.namespaces.expand("ex:a") == IRI("http://e/a")
