"""Unit tests for the Turtle-subset parser."""

import pytest

from repro.rdf.namespace import RDF_TYPE, XSD
from repro.rdf.terms import IRI, BlankNode, Literal, Triple
from repro.rdf.turtle import TurtleParseError, parse_turtle


class TestBasics:
    def test_prefixed_names(self):
        doc = """
        @prefix ex: <http://example.org/> .
        ex:a ex:knows ex:b .
        """
        (triple,) = parse_turtle(doc)
        assert triple == Triple(
            IRI("http://example.org/a"),
            IRI("http://example.org/knows"),
            IRI("http://example.org/b"),
        )

    def test_sparql_style_prefix(self):
        doc = """
        PREFIX ex: <http://example.org/>
        ex:a ex:p ex:b .
        """
        (triple,) = parse_turtle(doc)
        assert triple.subject == IRI("http://example.org/a")

    def test_full_iris(self):
        doc = "<http://e/s> <http://e/p> <http://e/o> ."
        (triple,) = parse_turtle(doc)
        assert triple.predicate == IRI("http://e/p")

    def test_literal_objects(self):
        doc = '@prefix ex: <http://e/> . ex:s ex:p "hello" .'
        (triple,) = parse_turtle(doc)
        assert triple.object == Literal("hello")

    def test_typed_and_tagged_literals(self):
        doc = (
            '@prefix ex: <http://e/> .\n'
            'ex:s ex:p "42"^^<http://www.w3.org/2001/XMLSchema#int> .\n'
            'ex:s ex:q "chat"@fr .'
        )
        triples = parse_turtle(doc)
        assert triples[0].object.datatype == "http://www.w3.org/2001/XMLSchema#int"
        assert triples[1].object.language == "fr"

    def test_bare_numbers_and_booleans(self):
        doc = "@prefix ex: <http://e/> . ex:s ex:count 42 ; ex:ratio 3.5 ; ex:flag true ."
        triples = parse_turtle(doc)
        assert triples[0].object == Literal("42", datatype=XSD + "integer")
        assert triples[1].object == Literal("3.5", datatype=XSD + "decimal")
        assert triples[2].object == Literal("true", datatype=XSD + "boolean")

    def test_a_keyword_maps_to_rdf_type(self):
        doc = "@prefix ex: <http://e/> . ex:s a ex:Thing ."
        (triple,) = parse_turtle(doc)
        assert triple.predicate == RDF_TYPE

    def test_blank_node_terms(self):
        doc = "@prefix ex: <http://e/> . _:x ex:p _:y ."
        (triple,) = parse_turtle(doc)
        assert triple.subject == BlankNode("x")
        assert triple.object == BlankNode("y")


class TestListsAndComments:
    def test_predicate_list(self):
        doc = "@prefix ex: <http://e/> . ex:s ex:p ex:a ; ex:q ex:b ."
        triples = parse_turtle(doc)
        assert len(triples) == 2
        assert {t.predicate.value for t in triples} == {"http://e/p", "http://e/q"}
        assert all(t.subject == IRI("http://e/s") for t in triples)

    def test_object_list(self):
        doc = "@prefix ex: <http://e/> . ex:s ex:p ex:a , ex:b , ex:c ."
        triples = parse_turtle(doc)
        assert len(triples) == 3
        assert {t.object.value for t in triples} == {"http://e/a", "http://e/b", "http://e/c"}

    def test_trailing_semicolon_before_dot(self):
        doc = "@prefix ex: <http://e/> . ex:s ex:p ex:a ; ."
        assert len(parse_turtle(doc)) == 1

    def test_comments_ignored(self):
        doc = """
        @prefix ex: <http://e/> . # namespace
        # full line comment
        ex:s ex:p ex:o .  # trailing comment
        """
        assert len(parse_turtle(doc)) == 1


class TestErrors:
    def test_unknown_prefix(self):
        with pytest.raises(TurtleParseError):
            parse_turtle("ex:s ex:p ex:o .")

    def test_missing_final_dot(self):
        with pytest.raises(TurtleParseError):
            parse_turtle("@prefix ex: <http://e/> . ex:s ex:p ex:o")

    def test_literal_subject_rejected(self):
        with pytest.raises(TurtleParseError):
            parse_turtle('@prefix ex: <http://e/> . "s" ex:p ex:o .')

    def test_a_in_subject_position_rejected(self):
        with pytest.raises(TurtleParseError):
            parse_turtle("@prefix ex: <http://e/> . a ex:p ex:o .")

    def test_base_unsupported(self):
        with pytest.raises(TurtleParseError):
            parse_turtle("@base <http://e/> .")


class TestPaperExample:
    def test_paper_dataset_parses_to_sixteen_triples(self):
        from tests.conftest import PAPER_TURTLE

        triples = parse_turtle(PAPER_TURTLE)
        assert len(triples) == 16
        literals = [t for t in triples if isinstance(t.object, Literal)]
        assert len(literals) == 3
