"""Engine-level tests for dynamic updates and incremental index maintenance."""

import pytest

from repro import AmberEngine, IRI, Literal, Triple, UpdateError
from repro.index.attribute_index import AttributeIndex
from repro.index.neighborhood import NeighborhoodIndex
from repro.index.signature_index import SignatureIndex
from repro.index.synopsis import data_synopsis, signature_of

X = "http://dbpedia.org/resource/"
Y = "http://dbpedia.org/ontology/"
E = "http://example.org/"


def assert_indexes_exact(engine: AmberEngine) -> None:
    """Assert every maintained index equals a fresh build on the same graph."""
    graph = engine.data.graph
    fresh_attributes = AttributeIndex(graph)
    assert engine.indexes.attributes._postings == fresh_attributes._postings
    for vertex in graph.vertices():
        expected = data_synopsis(signature_of(graph, vertex))
        assert engine.indexes.signatures.synopsis(vertex) == expected
    fresh_signatures = SignatureIndex(graph)
    probes = [
        ([], []),
        ([], [frozenset({0})]),
        ([frozenset({0})], []),
        ([frozenset({0, 1})], [frozenset({1})]),
    ]
    for incoming, outgoing in probes:
        maintained = engine.indexes.signatures.candidates(incoming, outgoing)
        assert maintained == fresh_signatures.candidates(incoming, outgoing)
        assert maintained == engine.indexes.signatures.candidates_scan(incoming, outgoing)
    fresh_neighborhoods = NeighborhoodIndex(graph)
    edge_types = sorted(graph.distinct_edge_types())[:4] or [0]
    for vertex in graph.vertices():
        for direction in "+-":
            for edge_type in edge_types:
                maintained = engine.indexes.neighborhoods.neighbors(
                    vertex, direction, [edge_type]
                )
                expected = fresh_neighborhoods.neighbors(vertex, direction, [edge_type])
                assert maintained == expected


@pytest.fixture()
def engine(paper_turtle) -> AmberEngine:
    """A fresh, mutable engine over the Figure 1 dataset (function scope)."""
    return AmberEngine.from_turtle(paper_turtle)


class TestInsert:
    def test_insert_makes_new_rows_visible(self, engine, prefixes):
        query = prefixes + "SELECT ?p WHERE { ?p y:wasBornIn x:London . }"
        before = len(engine.query(query))
        result = engine.apply_update(
            prefixes + "INSERT DATA { x:David_Bowie y:wasBornIn x:London }"
        )
        assert result.inserted == 1 and result.changed
        assert len(engine.query(query)) == before + 1
        assert_indexes_exact(engine)

    def test_duplicate_insert_is_noop(self, engine, prefixes):
        update = prefixes + "INSERT DATA { x:Amy_Winehouse y:wasBornIn x:London }"
        result = engine.apply_update(update)
        assert result.inserted == 0 and not result.changed
        assert engine.data_version == 0

    def test_insert_new_vertices_and_attributes(self, engine, prefixes):
        engine.apply_update(
            prefixes
            + 'INSERT DATA { x:New_Place y:hasName "Fresh" . x:New_Place y:isPartOf x:England }'
        )
        rows = engine.query(prefixes + 'SELECT ?s WHERE { ?s y:hasName "Fresh" . }')
        assert len(rows) == 1
        assert_indexes_exact(engine)

    def test_reflexive_statement_round_trips(self, engine, prefixes):
        update = prefixes + "INSERT DATA { x:London y:sameAs x:London }"
        assert engine.apply_update(update).inserted == 1
        assert engine.apply_update(update).inserted == 0
        delete = prefixes + "DELETE DATA { x:London y:sameAs x:London }"
        assert engine.apply_update(delete).deleted == 1
        assert_indexes_exact(engine)


class TestDelete:
    def test_delete_removes_rows(self, engine, prefixes):
        query = prefixes + "SELECT ?p WHERE { ?p y:wasBornIn x:London . }"
        assert len(engine.query(query)) == 2
        result = engine.apply_update(
            prefixes + "DELETE DATA { x:Amy_Winehouse y:wasBornIn x:London }"
        )
        assert result.deleted == 1
        assert len(engine.query(query)) == 1
        assert_indexes_exact(engine)

    def test_delete_keeps_remaining_multi_edge_types(self, engine, prefixes):
        # Amy -> London carries {wasBornIn, diedIn}; deleting one keeps the other.
        engine.apply_update(prefixes + "DELETE DATA { x:Amy_Winehouse y:wasBornIn x:London }")
        still = engine.query(prefixes + "SELECT ?p WHERE { ?p y:diedIn x:London . }")
        assert len(still) == 1
        assert_indexes_exact(engine)

    def test_delete_missing_triple_is_noop(self, engine, prefixes):
        result = engine.apply_update(prefixes + "DELETE DATA { x:Never y:was x:Here }")
        assert result.deleted == 0 and not result.changed
        assert engine.data_version == 0

    def test_delete_attribute_triple(self, engine, prefixes):
        result = engine.apply_update(
            prefixes + 'DELETE DATA { x:Music_Band y:foundedIn "1994" }'
        )
        assert result.deleted == 1
        rows = engine.query(prefixes + 'SELECT ?b WHERE { ?b y:foundedIn "1994" . }')
        assert len(rows) == 0
        assert_indexes_exact(engine)

    def test_statistics_track_triple_count(self, engine, prefixes):
        assert engine.statistics()["triples"] == 16
        engine.apply_update(prefixes + "DELETE DATA { x:Amy_Winehouse y:wasBornIn x:London }")
        assert engine.statistics()["triples"] == 15
        engine.apply_update(prefixes + "INSERT DATA { x:Amy_Winehouse y:wasBornIn x:London }")
        assert engine.statistics()["triples"] == 16


class TestCacheInvalidation:
    def test_plan_cache_cleared_on_change(self, engine, prefixes):
        from repro.server import LRUCache

        engine.plan_cache = LRUCache(16)
        query = prefixes + "SELECT ?p WHERE { ?p y:flewTo x:Mars . }"
        # The predicate is unknown, so the cached plan is unsatisfiable.
        assert len(engine.query(query)) == 0
        assert len(engine.plan_cache) == 1
        engine.apply_update(prefixes + "INSERT DATA { x:Amy_Winehouse y:flewTo x:Mars }")
        # A stale plan would still answer 0 rows; invalidation fixes it.
        assert len(engine.query(query)) == 1

    def test_count_consistent_after_update(self, engine, prefixes):
        query = prefixes + "SELECT ?p WHERE { ?p y:wasBornIn x:London . }"
        engine.apply_update(prefixes + "INSERT DATA { x:David_Bowie y:wasBornIn x:London }")
        assert engine.count(query) == len(engine.query(query)) == 3

    def test_data_version_increments_per_changing_batch(self, engine, prefixes):
        assert engine.data_version == 0
        engine.apply_update(prefixes + "INSERT DATA { x:A y:p x:B . x:B y:p x:C }")
        assert engine.data_version == 1
        engine.apply_update(prefixes + "DELETE DATA { x:Nothing y:here x:Atall }")
        assert engine.data_version == 1


class TestLoadOperation:
    def test_load_ntriples_file(self, engine, tmp_path):
        extra = tmp_path / "extra.nt"
        extra.write_text(
            f"<{E}s1> <{E}p> <{E}o1> .\n<{E}s2> <{E}p> <{E}o2> .\n", encoding="utf-8"
        )
        result = engine.apply_update(f"LOAD <file://{extra}>")
        assert result.inserted == 2
        rows = engine.query(f"SELECT ?s WHERE {{ ?s <{E}p> ?o . }}")
        assert len(rows) == 2
        assert_indexes_exact(engine)

    def test_load_missing_file_raises(self, engine, tmp_path):
        with pytest.raises(UpdateError, match="LOAD"):
            engine.apply_update(f"LOAD <file://{tmp_path}/absent.nt>")

    def test_load_silent_swallows_errors(self, engine, tmp_path):
        result = engine.apply_update(f"LOAD SILENT <file://{tmp_path}/absent.nt>")
        assert result.inserted == 0 and result.operations == 1

    def test_load_relative_path_uses_base_dir(self, engine, tmp_path):
        (tmp_path / "rel.nt").write_text(f"<{E}s> <{E}p> <{E}o> .\n", encoding="utf-8")
        result = engine.apply_update("LOAD <rel.nt>", base_dir=tmp_path)
        assert result.inserted == 1


class TestLoadErrorPaths:
    """LOAD failures must raise typed errors and leave no partial mutation."""

    def _snapshot(self, engine):
        return (
            engine.data.triple_count,
            engine.data_version,
            set(engine.data.graph.edges()),
        )

    def test_missing_file_raises_update_error_without_mutation(self, engine, tmp_path, prefixes):
        before = self._snapshot(engine)
        with pytest.raises(UpdateError, match="LOAD"):
            engine.apply_update(f"LOAD <file://{tmp_path}/absent.nt>")
        assert self._snapshot(engine) == before

    def test_unparseable_payload_raises_update_error_without_mutation(self, engine, tmp_path):
        garbled = tmp_path / "garbled.nt"
        garbled.write_text("<http://e/s> not-ntriples-at-all\n", encoding="utf-8")
        before = self._snapshot(engine)
        with pytest.raises(UpdateError, match="LOAD"):
            engine.apply_update(f"LOAD <file://{garbled}>")
        assert self._snapshot(engine) == before

    def test_unknown_format_raises_update_error(self, engine, tmp_path):
        payload = tmp_path / "data.xml"
        payload.write_text("<rdf/>", encoding="utf-8")
        with pytest.raises(UpdateError, match="format"):
            engine.apply_update(f"LOAD <file://{payload}>")

    def test_failing_load_aborts_the_whole_chain(self, engine, prefixes, tmp_path):
        """Operations preceding a failing LOAD must not be half-applied."""
        before = self._snapshot(engine)
        update = (
            prefixes
            + "INSERT DATA { x:A y:isPartOf x:B } ; "
            + f"LOAD <file://{tmp_path}/absent.nt>"
        )
        with pytest.raises(UpdateError):
            engine.apply_update(update)
        assert self._snapshot(engine) == before

    def test_read_only_service_rejects_load_without_mutation(self, engine, tmp_path):
        from repro.server import EngineService, ServiceConfig, ServiceReadOnly

        extra = tmp_path / "extra.nt"
        extra.write_text(f"<{E}s1> <{E}p> <{E}o1> .\n", encoding="utf-8")
        service = EngineService(engine, ServiceConfig(read_only=True))
        before = self._snapshot(engine)
        with pytest.raises(ServiceReadOnly):
            service.update(f"LOAD <file://{extra}>")
        assert self._snapshot(engine) == before

    def test_silent_failure_does_not_bump_data_version(self, engine, tmp_path):
        before = self._snapshot(engine)
        result = engine.apply_update(f"LOAD SILENT <file://{tmp_path}/absent.nt>")
        assert result.inserted == 0 and not result.changed
        assert self._snapshot(engine) == before


class TestCompaction:
    def test_rtree_compacts_and_stays_exact_under_churn(self, prefixes):
        engine = AmberEngine.from_turtle("@prefix x: <http://e/> . x:a x:p x:b .")
        signatures = engine.indexes.signatures
        signatures.COMPACT_MIN_STALE = 4  # force compaction quickly
        triples = [
            Triple(IRI(f"{E}s{i}"), IRI(f"{E}p{i % 3}"), IRI(f"{E}o{i % 7}"))
            for i in range(40)
        ]
        engine.insert_triples(triples)
        assert signatures.stale_count < 40  # compaction ran at least once
        engine.delete_triples(triples[::2])
        assert_indexes_exact(engine)

    def test_insert_literal_only_vertex(self, prefixes):
        engine = AmberEngine.from_turtle("@prefix x: <http://e/> . x:a x:p x:b .")
        engine.insert_triples([Triple(IRI(E + "lonely"), IRI(E + "name"), Literal("L"))])
        rows = engine.query(f'SELECT ?s WHERE {{ ?s <{E}name> "L" . }}')
        assert len(rows) == 1
        assert_indexes_exact(engine)
