"""Unit tests for the SPARQL UPDATE parser (sparql/update.py)."""

import pytest

from repro import IRI, Literal, Triple
from repro.sparql import SparqlSyntaxError
from repro.sparql.update import DeleteData, InsertData, LoadData, parse_update

E = "http://example.org/"
PREFIX = f"PREFIX ex: <{E}> "


class TestInsertDeleteData:
    def test_insert_data_ground_triples(self):
        request = parse_update(
            PREFIX + 'INSERT DATA { ex:a ex:p ex:b . ex:a ex:name "Ada" }'
        )
        (operation,) = request.operations
        assert isinstance(operation, InsertData)
        assert operation.triples == (
            Triple(IRI(E + "a"), IRI(E + "p"), IRI(E + "b")),
            Triple(IRI(E + "a"), IRI(E + "name"), Literal("Ada")),
        )

    def test_delete_data(self):
        request = parse_update(PREFIX + "DELETE DATA { ex:a ex:p ex:b . }")
        (operation,) = request.operations
        assert isinstance(operation, DeleteData)
        assert operation.triples == (Triple(IRI(E + "a"), IRI(E + "p"), IRI(E + "b")),)

    def test_predicate_and_object_lists(self):
        request = parse_update(PREFIX + 'INSERT DATA { ex:a ex:p ex:b , ex:c ; ex:q "v" }')
        (operation,) = request.operations
        assert len(operation.triples) == 3

    def test_a_shorthand(self):
        request = parse_update(PREFIX + "INSERT DATA { ex:a a ex:Type }")
        (operation,) = request.operations
        assert operation.triples[0].predicate.value.endswith("#type")

    def test_operation_sequence_with_semicolons(self):
        request = parse_update(
            PREFIX + "INSERT DATA { ex:a ex:p ex:b } ; DELETE DATA { ex:a ex:p ex:b } ;"
        )
        kinds = [type(op) for op in request.operations]
        assert kinds == [InsertData, DeleteData]

    def test_case_insensitive_keywords(self):
        request = parse_update(PREFIX + "insert data { ex:a ex:p ex:b }")
        assert isinstance(request.operations[0], InsertData)


class TestLoad:
    def test_load_plain(self):
        request = parse_update("LOAD <file:///data/extra.nt>")
        (operation,) = request.operations
        assert operation == LoadData(source="file:///data/extra.nt", silent=False)

    def test_load_silent(self):
        request = parse_update("LOAD SILENT <extra.nt>")
        (operation,) = request.operations
        assert operation.silent

    def test_load_into_graph_rejected(self):
        with pytest.raises(SparqlSyntaxError, match="INTO GRAPH"):
            parse_update("LOAD <extra.nt> INTO GRAPH <http://e/g>")


class TestRejections:
    def test_variables_rejected(self):
        with pytest.raises(SparqlSyntaxError, match="ground"):
            parse_update("INSERT DATA { ?x <http://e/p> <http://e/o> }")

    def test_template_insert_rejected(self):
        with pytest.raises(SparqlSyntaxError, match="INSERT DATA"):
            parse_update("INSERT { <http://e/s> <http://e/p> <http://e/o> } WHERE { }")

    def test_select_rejected_with_pointer_to_query_endpoint(self):
        with pytest.raises(SparqlSyntaxError, match="query endpoint"):
            parse_update("SELECT ?s WHERE { ?s <http://e/p> ?o . }")

    def test_graph_blocks_rejected(self):
        update = "INSERT DATA { GRAPH <http://e/g> { <http://e/s> <http://e/p> <http://e/o> } }"
        with pytest.raises(SparqlSyntaxError, match="GRAPH"):
            parse_update(update)

    def test_empty_update_rejected(self):
        with pytest.raises(SparqlSyntaxError, match="no operations"):
            parse_update(PREFIX)

    def test_unterminated_block(self):
        with pytest.raises(SparqlSyntaxError, match="missing '}'"):
            parse_update("INSERT DATA { <http://e/s> <http://e/p> <http://e/o> ")

    def test_literal_subject_is_a_syntax_error_not_a_type_error(self):
        # Must surface as SparqlSyntaxError so the protocol layer maps it
        # to 400, never as a bare TypeError (-> 500).
        with pytest.raises(SparqlSyntaxError, match="literal"):
            parse_update('INSERT DATA { "x" <http://e/p> <http://e/o> }')
        with pytest.raises(SparqlSyntaxError, match="literal"):
            parse_update("DELETE DATA { 5 <http://e/p> <http://e/o> }")

    def test_literal_subject_in_select_is_a_syntax_error_too(self):
        from repro.sparql.parser import parse_sparql

        with pytest.raises(SparqlSyntaxError, match="literal"):
            parse_sparql('SELECT ?o WHERE { "x" <http://e/p> ?o . }')


class TestTokenizerInteraction:
    def test_update_keywords_do_not_shadow_prefixed_names(self):
        # 'data:' / 'load:' / 'insert:' are legal prefixes and must keep
        # tokenizing as pnames, not keywords (the (?!:) lookahead).
        request = parse_update(
            "PREFIX data: <http://example.org/> INSERT DATA { data:a data:p data:b }"
        )
        (operation,) = request.operations
        assert operation.triples[0].subject == IRI(E + "a")

    def test_select_queries_unaffected_by_new_keywords(self):
        from repro.sparql.parser import parse_sparql

        query = parse_sparql(
            "PREFIX load: <http://example.org/> SELECT ?insert WHERE { ?insert load:p ?o . }"
        )
        assert [v.name for v in query.projection] == ["insert"]

    def test_hyphenated_prefixes_starting_with_keywords_still_work(self):
        # 'insert-log' starts with the INSERT keyword; the (?![:-]) guard
        # must keep the whole pname intact.
        from repro.sparql.parser import parse_sparql

        query = parse_sparql(
            "PREFIX insert-log: <http://example.org/> "
            "SELECT ?s WHERE { insert-log:a <http://example.org/p> ?s . }"
        )
        assert query.patterns[0].subject == IRI(E + "a")
        request = parse_update(
            "PREFIX data-v2: <http://example.org/> INSERT DATA { data-v2:a data-v2:p data-v2:b }"
        )
        assert request.operations[0].triples[0].predicate == IRI(E + "p")
