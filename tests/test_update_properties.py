"""Property-based rebuild equivalence for dynamic updates (hypothesis).

The central invariant of the mutation subsystem: after ANY interleaving of
inserts and deletes, the incrementally maintained engine is indistinguishable
from a from-scratch :class:`AmberEngine` build on the final triple set —
same query results, same counts, same index contents.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AmberEngine, IRI, Literal, Triple
from repro.index.attribute_index import AttributeIndex
from repro.index.synopsis import data_synopsis, signature_of

E = "http://example.org/"

_entities = st.sampled_from([f"e{i}" for i in range(6)])
_predicates = st.sampled_from([f"p{i}" for i in range(3)])
# Literal values deliberately never collide with rendered IRIs, so the
# reflexive-statement attribute encoding stays injective.
_literals = st.sampled_from([f"lit{i}" for i in range(4)])


def _iri(name: str) -> IRI:
    return IRI(E + name)


_resource_triples = st.builds(
    lambda s, p, o: Triple(_iri(s), _iri(p), _iri(o)), _entities, _predicates, _entities
)
_literal_triples = st.builds(
    lambda s, p, v: Triple(_iri(s), _iri(p), Literal(v)), _entities, _predicates, _literals
)
_triples = st.one_of(_resource_triples, _literal_triples)

_initial = st.lists(_triples, max_size=20)
_ops = st.lists(st.tuples(st.sampled_from(["insert", "delete"]), _triples), max_size=40)

#: Query battery covering every pattern shape the matcher distinguishes:
#: plain edges, paths, stars, literal attributes, constant subjects/objects,
#: DISTINCT projections and constants that may not exist in the data.
QUERIES = [
    f"SELECT ?x ?y WHERE {{ ?x <{E}p0> ?y . }}",
    f"SELECT ?x ?y ?z WHERE {{ ?x <{E}p0> ?y . ?y <{E}p1> ?z . }}",
    f"SELECT ?x WHERE {{ ?x <{E}p0> ?a . ?x <{E}p1> ?b . }}",
    f'SELECT ?x WHERE {{ ?x <{E}p1> "lit1" . }}',
    f'SELECT DISTINCT ?x WHERE {{ ?x <{E}p2> "lit0" . ?x <{E}p0> ?y . }}',
    f"SELECT ?x WHERE {{ <{E}e0> <{E}p0> ?x . }}",
    f"SELECT ?x WHERE {{ ?x <{E}p2> <{E}e1> . }}",
    f"SELECT DISTINCT ?x ?y WHERE {{ ?x <{E}p1> ?y . ?y <{E}p1> ?x . }}",
    f"SELECT ?x WHERE {{ ?x <{E}unknown> ?y . }}",
]


@settings(max_examples=30, deadline=None)
@given(initial=_initial, ops=_ops)
def test_rebuild_equivalence(initial, ops):
    """Any insert/delete interleaving ends exactly at the from-scratch build."""
    unique_initial = list(dict.fromkeys(initial))
    engine = AmberEngine.from_triples(unique_initial)
    shadow = set(unique_initial)
    for op, triple in ops:
        if op == "insert":
            engine.insert_triples([triple])
            shadow.add(triple)
        else:
            engine.delete_triples([triple])
            shadow.discard(triple)

    fresh = AmberEngine.from_triples(sorted(shadow, key=lambda t: t.n3()))

    # Query-level equivalence over the whole battery.
    for query in QUERIES:
        incremental = engine.query(query)
        rebuilt = fresh.query(query)
        assert incremental.same_solutions(rebuilt), query
        assert engine.count(query) == fresh.count(query), query

    # The logical dataset agrees triple-for-triple.
    assert engine.statistics()["triples"] == fresh.statistics()["triples"] == len(shadow)

    # Index-level exactness against the engine's own (mutated) graph.
    graph = engine.data.graph
    assert engine.indexes.attributes._postings == AttributeIndex(graph)._postings
    for vertex in graph.vertices():
        expected = data_synopsis(signature_of(graph, vertex))
        assert engine.indexes.signatures.synopsis(vertex) == expected
    probe = ([frozenset({0})], [])
    assert engine.indexes.signatures.candidates(*probe) == (
        engine.indexes.signatures.candidates_scan(*probe)
    )


@settings(max_examples=20, deadline=None)
@given(ops=_ops)
def test_delete_everything_leaves_empty_answers(ops):
    """Inserting then deleting the same triples yields no spurious answers."""
    triples = [triple for _, triple in ops]
    engine = AmberEngine.from_triples([])
    engine.insert_triples(triples)
    engine.delete_triples(triples)
    assert engine.statistics()["triples"] == 0
    for query in QUERIES:
        assert len(engine.query(query)) == 0, query
