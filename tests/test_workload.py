"""Unit tests for the query workload generator (Section 7.2)."""

import pytest

from repro.datasets import LubmGenerator, WorkloadConfig, WorkloadGenerator, YagoGenerator
from repro.rdf.terms import IRI, Literal
from repro.sparql.algebra import Variable


@pytest.fixture(scope="module")
def lubm_store():
    return LubmGenerator(scale=1, students_per_department=30, seed=1).store()


@pytest.fixture(scope="module")
def generator(lubm_store):
    return WorkloadGenerator(lubm_store, seed=42)


class TestStarQueries:
    def test_requested_size(self, generator):
        for size in (5, 10, 20):
            query = generator.star_query(size)
            assert len(query.query.patterns) == size
            assert query.shape == "star"
            assert query.size == size

    def test_star_structure_shares_centre(self, generator):
        generated = generator.star_query(10)
        centre_terms = set()
        for triple in generated.source_triples:
            centre_terms.add(triple.subject)
            centre_terms.add(triple.object)
        assert generated.seed_entity in centre_terms
        # Every source triple touches the seed entity.
        for triple in generated.source_triples:
            assert generated.seed_entity in (triple.subject, triple.object)

    def test_impossible_size_raises(self, generator):
        with pytest.raises(ValueError):
            generator.star_query(10_000)


class TestComplexQueries:
    def test_requested_size(self, generator):
        for size in (5, 10, 25):
            query = generator.complex_query(size)
            assert len(query.query.patterns) == size

    def test_patterns_form_connected_structure(self, generator):
        generated = generator.complex_query(15)
        # Union-find over the source triples: they must form one connected component.
        parent = {}

        def find(x):
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a, b):
            parent[find(a)] = find(b)

        for triple in generated.source_triples:
            union(triple.subject, triple.subject)
            if not isinstance(triple.object, Literal):
                union(triple.subject, triple.object)
            else:
                union(triple.subject, triple.subject)
        roots = {find(t.subject) for t in generated.source_triples}
        assert len(roots) == 1


class TestAssembly:
    def test_queries_are_satisfiable_by_construction(self, lubm_store, generator):
        from repro.baselines import HashJoinEngine

        engine = HashJoinEngine(lubm_store)
        for shape in ("star", "complex"):
            for generated in generator.workload(shape, 8, 3):
                assert len(engine.query(generated.query, timeout_seconds=30)) >= 1

    def test_variable_cap_respected(self, lubm_store):
        """The cap bounds leaf variables; interior resources must stay variables."""
        config = WorkloadConfig(max_variables=4)
        generator = WorkloadGenerator(lubm_store, seed=9, config=config)
        for generated in generator.workload("complex", 20, 5):
            degree: dict = {}
            for triple in generated.source_triples:
                degree[triple.subject] = degree.get(triple.subject, 0) + 1
                if not isinstance(triple.object, Literal):
                    degree[triple.object] = degree.get(triple.object, 0) + 1
            interior = sum(1 for count in degree.values() if count > 1)
            assert len(generated.query.variables()) <= 4 + interior

    def test_constant_injection(self, lubm_store):
        config = WorkloadConfig(constant_iri_probability=1.0)
        generator = WorkloadGenerator(lubm_store, seed=9, config=config)
        generated = generator.star_query(6)
        constants = generated.query.constant_terms()
        assert any(isinstance(term, IRI) for term in constants)
        # The seed entity itself stays a variable.
        assert len(generated.query.variables()) >= 1

    def test_zero_constant_probability_keeps_variables(self, lubm_store):
        config = WorkloadConfig(constant_iri_probability=0.0, max_variables=None)
        generator = WorkloadGenerator(lubm_store, seed=9, config=config)
        generated = generator.complex_query(6)
        assert len(generated.query.variables()) >= 3

    def test_projection_covers_all_variables(self, generator):
        generated = generator.star_query(8)
        assert set(generated.query.projection) == set(generated.query.variables())

    def test_unknown_shape_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.workload("zigzag", 5, 1)

    def test_repeated_star_predicates_become_constants(self):
        """A star around a hub with one dominant predicate must stay selective."""
        store = YagoGenerator(persons=200, cities=10, seed=3).store()
        generator = WorkloadGenerator(store, seed=3)
        generated = generator.star_query(20)
        seen: dict[tuple, int] = {}
        for pattern, triple in zip(generated.query.patterns, generated.source_triples):
            subject_var = isinstance(pattern.subject, Variable)
            object_var = isinstance(pattern.object, Variable)
            if subject_var and object_var:
                direction = "out" if triple.subject == generated.seed_entity else "in"
                key = (pattern.predicate, direction)
                seen[key] = seen.get(key, 0) + 1
        # Repeats of one (predicate, direction) pair with fresh variables are
        # suppressed (a second one can survive only when the repeated satellite
        # is an interior resource that must stay a variable for connectivity).
        assert all(count <= 2 for count in seen.values())
        assert sum(seen.values()) <= len(seen) + 2
